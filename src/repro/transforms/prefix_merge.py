"""Prefix-merging optimization (VASim's standard compression).

Table I's "Compressed states" column reports each benchmark after "VASim's
standard, prefix-merging-based optimizations".  Two states can merge when
they are indistinguishable *looking backwards*: same character set, same
start behaviour, same report behaviour, and the same (merged) predecessor
set.  Iterating this to a fixpoint folds the common prefixes of a pattern
set into a trie-like shared structure without changing any report stream.

The pass is semantics-preserving; a property test checks report equality on
random inputs before/after.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, STE

__all__ = ["merge_common_prefixes", "MergeStats"]


@dataclass(frozen=True)
class MergeStats:
    """Outcome of a prefix-merge pass."""

    states_before: int
    states_after: int
    passes: int

    @property
    def compression_factor(self) -> float:
        """Fraction of states removed (Table I's "Compr. factor")."""
        if self.states_before == 0:
            return 0.0
        return 1.0 - self.states_after / self.states_before


def merge_common_prefixes(automaton: Automaton) -> tuple[Automaton, MergeStats]:
    """Return a prefix-merged copy of ``automaton`` plus statistics.

    Counters are never merged (they hold independent run-time state); STEs
    merge only with STEs.  Report-code repr collisions (AZ406) are
    rejected up front — the merge signature keys on ``repr(report_code)``,
    so distinct codes with one repr would silently conflate report
    streams.
    """
    from repro.analysis.preconditions import check_merge, require

    require(check_merge(automaton), "prefix-merge")
    idents = list(automaton.idents())
    parent: dict[str, str] = {ident: ident for ident in idents}

    def find(ident: str) -> str:
        root = ident
        while parent[root] != root:
            root = parent[root]
        while parent[ident] != root:
            parent[ident], ident = root, parent[ident]
        return root

    preds = {i: automaton.predecessors(i) for i in idents}
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        groups: dict[tuple, str] = {}
        for ident in idents:
            if find(ident) != ident:
                continue
            element = automaton[ident]
            if isinstance(element, CounterElement):
                continue
            signature = (
                element.charset.mask,
                element.start,
                element.report,
                repr(element.report_code) if element.report else None,
                frozenset(find(p) for p in preds[ident]),
            )
            existing = groups.get(signature)
            if existing is None:
                groups[signature] = ident
            else:
                parent[ident] = existing
                changed = True

    merged = Automaton(automaton.name)
    kept: dict[str, STE | CounterElement] = {}
    for ident in idents:
        if find(ident) == ident:
            element = automaton[ident]
            if isinstance(element, STE):
                kept[ident] = merged.add_ste(
                    ident,
                    element.charset,
                    start=element.start,
                    report=element.report,
                    report_code=element.report_code,
                )
            else:
                kept[ident] = merged.add_counter(
                    ident,
                    element.target,
                    mode=element.mode,
                    report=element.report,
                    report_code=element.report_code,
                )
    for src, dst in automaton.edges():
        merged.add_edge(find(src), find(dst))
    for src, counter in automaton.reset_edges():
        merged.add_reset_edge(find(src), find(counter))

    stats = MergeStats(
        states_before=automaton.n_states,
        states_after=merged.n_states,
        passes=passes,
    )
    return merged, stats
