"""Automata transformations: prefix-merge, striding, widening."""

from repro.transforms.prefix_merge import MergeStats, merge_common_prefixes
from repro.transforms.striding import pack_bits, stride
from repro.transforms.suffix_merge import merge_bidirectional, merge_common_suffixes
from repro.transforms.widening import widen

__all__ = [
    "MergeStats",
    "merge_bidirectional",
    "merge_common_prefixes",
    "merge_common_suffixes",
    "pack_bits",
    "stride",
    "widen",
]
